package es2

import (
	"fmt"

	"es2/internal/faults"
	"es2/internal/sim"
	"es2/internal/telemetry"
	"es2/internal/workloads"
)

// Cluster-scale windowed telemetry: one recorder spans the rack, with
// per-host headline series distinguished by a host="hN" label and
// fabric-level series for the switch. Like the single-host wiring,
// everything here is observational — the probes read counters the
// simulation already maintains — so a telemetry run is bit-identical
// to a plain run of the same spec.

// clusterTelemetry holds the cluster recorder. The RPC latency
// histograms it exports are the per-host and cluster-wide spectra the
// runner already owns (clusterHost.lat, clusterBed.clusterLat).
type clusterTelemetry struct {
	rec *telemetry.Recorder
}

// setupClusterTelemetry marks telemetry on; the recorder itself is
// assembled at warmup end, after the shared histograms reset.
func (cb *clusterBed) setupClusterTelemetry() {
	cb.tel = &clusterTelemetry{}
}

// startTelemetry registers every series and begins recording. Called at
// the start of the measurement window, after resetAtWarmupEnd, so the
// recorder's baselines coincide with the scalar result's.
func (cb *clusterBed) startTelemetry(end sim.Time) {
	rec := telemetry.New(cb.eng, sim.DurationOf(cb.spec.TelemetryWindow))
	cb.tel.rec = rec

	for _, h := range cb.hosts {
		h := h
		hl := []telemetry.Label{{Key: "host", Value: fmt.Sprintf("h%d", h.index)}}
		rec.Counter("es2_cluster_exits", "VM exits per host, all VMs and reasons.",
			hl, func() float64 {
				var n uint64
				for _, vm := range h.vms {
					n += vm.Exits.Total()
				}
				return float64(n)
			})
		guestSec := func() float64 {
			var g sim.Time
			for _, vm := range h.vms {
				for _, v := range vm.VCPUs {
					g += v.GuestTime
				}
			}
			return g.Seconds()
		}
		modeSec := func() float64 {
			var t sim.Time
			for _, vm := range h.vms {
				for _, v := range vm.VCPUs {
					t += v.GuestTime + v.HostTime
				}
			}
			return t.Seconds()
		}
		rec.Fraction("es2_cluster_tig", "Time-in-guest fraction per host over the window.",
			hl, guestSec, modeSec)
		rec.Counter("es2_cluster_vhost_busy_seconds", "CPU seconds of the host's vhost I/O threads.",
			hl, func() float64 {
				var b sim.Time
				for _, io := range h.ios {
					b += io.Thread.SumExec()
				}
				return b.Seconds()
			})
		rec.Counter("es2_cluster_dev_irqs", "Device interrupts delivered to the host's VMs.",
			hl, func() float64 {
				var n uint64
				for _, vm := range h.vms {
					n += vm.DevIRQDelivered.Value()
				}
				return float64(n)
			})
		if red := h.es.Redirector; red != nil {
			rec.Counter("es2_cluster_irq_redirected", "Device interrupts redirected to an online vCPU, per host.",
				hl, func() float64 { return float64(red.Redirected) })
		}
		if len(h.clients)+len(h.loads) > 0 {
			rec.Counter("es2_cluster_rpc_completed", "RPC requests completed by the host's client VMs.",
				hl, func() float64 {
					var n uint64
					for _, c := range h.clients {
						n += c.Completed
					}
					for _, c := range h.loads {
						n += c.Completed
					}
					return float64(n)
				})
		}
		if len(h.loads) > 0 {
			rec.Counter("es2_loadgen_offered", "Open-loop arrivals offered by the host's client VMs.",
				hl, func() float64 {
					var n uint64
					for _, c := range h.loads {
						n += c.Offered
					}
					return float64(n)
				})
			rec.Counter("es2_loadgen_admitted", "Open-loop arrivals admitted into the system.",
				hl, func() float64 {
					var n uint64
					for _, c := range h.loads {
						n += c.Admitted
					}
					return float64(n)
				})
			rec.Counter("es2_loadgen_shed", "Open-loop arrivals shed at full outstanding caps.",
				hl, func() float64 {
					var n uint64
					for _, c := range h.loads {
						n += c.Shed
					}
					return float64(n)
				})
			rec.Counter("es2_loadgen_completed", "Open-loop logical requests completed (all fan-out legs gathered).",
				hl, func() float64 {
					var n uint64
					for _, c := range h.loads {
						n += c.Completed
					}
					return float64(n)
				})
			rec.Gauge("es2_loadgen_backlog", "Open-loop requests in flight, sampled at window end.",
				hl, func() float64 {
					n := 0
					for _, c := range h.loads {
						n += c.Backlog()
					}
					return float64(n)
				})
		}
	}
	if rt := cb.loadRT; rt != nil {
		rec.Gauge("es2_loadgen_multiplier", "Effective profile rate multiplier (phase x diurnal curve).",
			nil, func() float64 { return rt.Multiplier(cb.eng.Now()) })
		rec.Gauge("es2_loadgen_phase", "Index of the profile phase in effect.",
			nil, func() float64 { return float64(rt.PhaseIndexAt(cb.eng.Now())) })
	}

	sw := cb.sw
	rec.Counter("es2_fabric_forwarded", "Frames forwarded by the switch.",
		nil, func() float64 { return float64(sw.Forwarded) })
	rec.Counter("es2_fabric_route_drops", "Frames dropped for lack of a route.",
		nil, func() float64 { return float64(sw.RouteDrops) })
	rec.Counter("es2_fabric_egress_drops", "Frames tail-dropped at egress queues, all ports.",
		nil, func() float64 {
			var n uint64
			for i := 0; i < sw.NumPorts(); i++ {
				n += sw.Port(i).EgressDrops
			}
			return float64(n)
		})
	rec.Counter("es2_fabric_uplink_bytes", "Bytes crossing the shared backplane.",
		nil, func() float64 { return float64(sw.UplinkBytes) })
	for i := 0; i < sw.NumPorts(); i++ {
		p := sw.Port(i)
		rec.Gauge("es2_fabric_egress_queued", "Frames queued at the port's egress, sampled at window end.",
			[]telemetry.Label{{Key: "port", Value: p.Name()}},
			func() float64 { return float64(p.EgressQueued()) })
	}

	if cb.faultsOn() {
		for _, fc := range []struct {
			kind string
			get  func() uint64
		}{
			{"wire_drop", func() uint64 { return cb.faultCounters().WireDrops }},
			{"wire_dup", func() uint64 { return cb.faultCounters().WireDups }},
			{"lost_kick", func() uint64 { return cb.faultCounters().LostKicks }},
			{"lost_signal", func() uint64 { return cb.faultCounters().LostSignals }},
			{"vhost_stall", func() uint64 { return cb.faultCounters().VhostStalls }},
			{"pi_outage", func() uint64 { return cb.faultCounters().PIOutages }},
			{"preempt_storm", func() uint64 { return cb.faultCounters().PreemptStorms }},
		} {
			get := fc.get
			rec.Counter("es2_faults_injected", "Faults injected across the cluster, by kind.",
				[]telemetry.Label{{Key: "kind", Value: fc.kind}},
				func() float64 { return float64(get()) })
		}
	}

	if cc := cb.chaos; cc != nil {
		chaosKinds := []struct {
			kind string
			k    faults.ChaosKind
		}{
			{"host_crash", faults.ChaosHostCrash},
			{"host_freeze", faults.ChaosHostFreeze},
			{"link_flap", faults.ChaosLinkFlap},
			{"link_degrade", faults.ChaosLinkDegrade},
			{"egress_blackhole", faults.ChaosBlackhole},
		}
		for _, ck := range chaosKinds {
			k := ck.k
			rec.Counter("es2_chaos_injected", "Chaos faults whose outage window has started, by kind.",
				[]telemetry.Label{{Key: "kind", Value: ck.kind}},
				func() float64 {
					now := cb.eng.Now()
					var n uint64
					for _, f := range cc.faults {
						if f.ev.Kind == k && f.start <= now {
							n++
						}
					}
					return float64(n)
				})
		}
		rec.Gauge("es2_chaos_hosts_down", "Hosts currently crashed or frozen.",
			nil, func() float64 { return float64(cc.downHosts) })
		rec.Gauge("es2_chaos_faults_active", "Chaos faults currently in effect.",
			nil, func() float64 { return float64(cc.active) })
		rec.Counter("es2_chaos_link_drops", "Frames lost to down links, all ports.",
			nil, func() float64 {
				var n uint64
				for i := 0; i < sw.NumPorts(); i++ {
					n += sw.Port(i).LinkDrops
				}
				return float64(n)
			})
		rec.Counter("es2_chaos_blackhole_drops", "Frames discarded at blackholed egresses, all ports.",
			nil, func() float64 {
				var n uint64
				for i := 0; i < sw.NumPorts(); i++ {
					n += sw.Port(i).BlackholeDrops
				}
				return float64(n)
			})
		sumClients := func(get func(*workloads.RPCClient) uint64) float64 {
			var n uint64
			for _, h := range cb.hosts {
				for _, c := range h.clients {
					n += get(c)
				}
			}
			return float64(n)
		}
		rec.Counter("es2_chaos_rpc_timeouts", "Client request deadlines expired.",
			nil, func() float64 { return sumClients(func(c *workloads.RPCClient) uint64 { return c.Timeouts }) })
		rec.Counter("es2_chaos_rpc_retries", "Client requests re-issued after a timeout.",
			nil, func() float64 { return sumClients(func(c *workloads.RPCClient) uint64 { return c.Retries }) })
		rec.Counter("es2_chaos_flows_migrated", "Flows failed over to a surviving server.",
			nil, func() float64 { return sumClients(func(c *workloads.RPCClient) uint64 { return c.Migrated }) })
	}

	for _, h := range cb.hosts {
		if len(h.clients)+len(h.loads) == 0 {
			continue
		}
		rec.Histogram("es2_cluster_rpc_latency_seconds",
			"End-to-end RPC latency as seen by the host's client VMs.",
			[]telemetry.Label{{Key: "host", Value: fmt.Sprintf("h%d", h.index)}}, h.lat)
	}
	rec.Histogram("es2_cluster_rpc_latency_seconds",
		"End-to-end RPC latency across all client VMs.",
		[]telemetry.Label{{Key: "host", Value: "all"}}, cb.clusterLat)

	registerSLOSeries(rec, cb.sloEval)

	rec.Start(end)
}

// fillClusterTelemetry publishes the finalized recording into the
// result: summary info, the recorder for export, and per-host plus
// cluster-wide RPC latency profiles on the aggregate Result.
func (cb *clusterBed) fillClusterTelemetry(res *ClusterResult) {
	rec := cb.tel.rec
	res.TelemetryRecorder = rec
	res.Telemetry = &TelemetryInfo{
		WindowMs: cb.spec.TelemetryWindow.Seconds() * 1e3,
		Windows:  len(rec.Windows()),
		Series:   rec.SeriesCount(),
	}
	for _, h := range cb.hosts {
		if len(h.clients)+len(h.loads) == 0 {
			continue
		}
		res.Aggregate.LatencyProfiles = append(res.Aggregate.LatencyProfiles,
			latencyProfile("rpc", fmt.Sprintf("h%d", h.index), h.lat))
	}
	res.Aggregate.LatencyProfiles = append(res.Aggregate.LatencyProfiles,
		latencyProfile("rpc", "cluster", cb.clusterLat))
}
