package es2

import (
	"fmt"

	"es2/internal/sim"
	"es2/internal/telemetry"
)

// Cluster-scale windowed telemetry: one recorder spans the rack, with
// per-host headline series distinguished by a host="hN" label and
// fabric-level series for the switch. Like the single-host wiring,
// everything here is observational — the probes read counters the
// simulation already maintains — so a telemetry run is bit-identical
// to a plain run of the same spec.

// clusterTelemetry holds the cluster recorder. The RPC latency
// histograms it exports are the per-host and cluster-wide spectra the
// runner already owns (clusterHost.lat, clusterBed.clusterLat).
type clusterTelemetry struct {
	rec *telemetry.Recorder
}

// setupClusterTelemetry marks telemetry on; the recorder itself is
// assembled at warmup end, after the shared histograms reset.
func (cb *clusterBed) setupClusterTelemetry() {
	cb.tel = &clusterTelemetry{}
}

// startTelemetry registers every series and begins recording. Called at
// the start of the measurement window, after resetAtWarmupEnd, so the
// recorder's baselines coincide with the scalar result's.
func (cb *clusterBed) startTelemetry(end sim.Time) {
	rec := telemetry.New(cb.eng, sim.DurationOf(cb.spec.TelemetryWindow))
	cb.tel.rec = rec

	for _, h := range cb.hosts {
		h := h
		hl := []telemetry.Label{{Key: "host", Value: fmt.Sprintf("h%d", h.index)}}
		rec.Counter("es2_cluster_exits", "VM exits per host, all VMs and reasons.",
			hl, func() float64 {
				var n uint64
				for _, vm := range h.vms {
					n += vm.Exits.Total()
				}
				return float64(n)
			})
		guestSec := func() float64 {
			var g sim.Time
			for _, vm := range h.vms {
				for _, v := range vm.VCPUs {
					g += v.GuestTime
				}
			}
			return g.Seconds()
		}
		modeSec := func() float64 {
			var t sim.Time
			for _, vm := range h.vms {
				for _, v := range vm.VCPUs {
					t += v.GuestTime + v.HostTime
				}
			}
			return t.Seconds()
		}
		rec.Fraction("es2_cluster_tig", "Time-in-guest fraction per host over the window.",
			hl, guestSec, modeSec)
		rec.Counter("es2_cluster_vhost_busy_seconds", "CPU seconds of the host's vhost I/O threads.",
			hl, func() float64 {
				var b sim.Time
				for _, io := range h.ios {
					b += io.Thread.SumExec()
				}
				return b.Seconds()
			})
		rec.Counter("es2_cluster_dev_irqs", "Device interrupts delivered to the host's VMs.",
			hl, func() float64 {
				var n uint64
				for _, vm := range h.vms {
					n += vm.DevIRQDelivered.Value()
				}
				return float64(n)
			})
		if red := h.es.Redirector; red != nil {
			rec.Counter("es2_cluster_irq_redirected", "Device interrupts redirected to an online vCPU, per host.",
				hl, func() float64 { return float64(red.Redirected) })
		}
		if len(h.clients) > 0 {
			rec.Counter("es2_cluster_rpc_completed", "RPC requests completed by the host's client VMs.",
				hl, func() float64 {
					var n uint64
					for _, c := range h.clients {
						n += c.Completed
					}
					return float64(n)
				})
		}
	}

	sw := cb.sw
	rec.Counter("es2_fabric_forwarded", "Frames forwarded by the switch.",
		nil, func() float64 { return float64(sw.Forwarded) })
	rec.Counter("es2_fabric_route_drops", "Frames dropped for lack of a route.",
		nil, func() float64 { return float64(sw.RouteDrops) })
	rec.Counter("es2_fabric_egress_drops", "Frames tail-dropped at egress queues, all ports.",
		nil, func() float64 {
			var n uint64
			for i := 0; i < sw.NumPorts(); i++ {
				n += sw.Port(i).EgressDrops
			}
			return float64(n)
		})
	rec.Counter("es2_fabric_uplink_bytes", "Bytes crossing the shared backplane.",
		nil, func() float64 { return float64(sw.UplinkBytes) })
	for i := 0; i < sw.NumPorts(); i++ {
		p := sw.Port(i)
		rec.Gauge("es2_fabric_egress_queued", "Frames queued at the port's egress, sampled at window end.",
			[]telemetry.Label{{Key: "port", Value: p.Name()}},
			func() float64 { return float64(p.EgressQueued()) })
	}

	if inj := cb.inj; inj != nil {
		for _, fc := range []struct {
			kind string
			get  func() uint64
		}{
			{"wire_drop", func() uint64 { return inj.Counters.WireDrops }},
			{"wire_dup", func() uint64 { return inj.Counters.WireDups }},
			{"lost_kick", func() uint64 { return inj.Counters.LostKicks }},
			{"lost_signal", func() uint64 { return inj.Counters.LostSignals }},
			{"vhost_stall", func() uint64 { return inj.Counters.VhostStalls }},
			{"pi_outage", func() uint64 { return inj.Counters.PIOutages }},
			{"preempt_storm", func() uint64 { return inj.Counters.PreemptStorms }},
		} {
			get := fc.get
			rec.Counter("es2_faults_injected", "Faults injected across the cluster, by kind.",
				[]telemetry.Label{{Key: "kind", Value: fc.kind}},
				func() float64 { return float64(get()) })
		}
	}

	for _, h := range cb.hosts {
		if len(h.clients) == 0 {
			continue
		}
		rec.Histogram("es2_cluster_rpc_latency_seconds",
			"End-to-end RPC latency as seen by the host's client VMs.",
			[]telemetry.Label{{Key: "host", Value: fmt.Sprintf("h%d", h.index)}}, h.lat)
	}
	rec.Histogram("es2_cluster_rpc_latency_seconds",
		"End-to-end RPC latency across all client VMs.",
		[]telemetry.Label{{Key: "host", Value: "all"}}, cb.clusterLat)

	rec.Start(end)
}

// fillClusterTelemetry publishes the finalized recording into the
// result: summary info, the recorder for export, and per-host plus
// cluster-wide RPC latency profiles on the aggregate Result.
func (cb *clusterBed) fillClusterTelemetry(res *ClusterResult) {
	rec := cb.tel.rec
	res.TelemetryRecorder = rec
	res.Telemetry = &TelemetryInfo{
		WindowMs: cb.spec.TelemetryWindow.Seconds() * 1e3,
		Windows:  len(rec.Windows()),
		Series:   rec.SeriesCount(),
	}
	for _, h := range cb.hosts {
		if len(h.clients) == 0 {
			continue
		}
		res.Aggregate.LatencyProfiles = append(res.Aggregate.LatencyProfiles,
			latencyProfile("rpc", fmt.Sprintf("h%d", h.index), h.lat))
	}
	res.Aggregate.LatencyProfiles = append(res.Aggregate.LatencyProfiles,
		latencyProfile("rpc", "cluster", cb.clusterLat))
}
