package es2

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpecFileRoundTrip(t *testing.T) {
	in := critSpec(Full(4))
	in.Name = "roundtrip"
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseScenarioSpec(strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Workload.Kind != Ping ||
		out.Workload.PingInterval != in.Workload.PingInterval ||
		!out.CritPath || out.Config != in.Config {
		t.Fatalf("round trip mutated the spec: %+v", out)
	}
	// Same spec, same results.
	r0, err := Run(in)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(out)
	if err != nil {
		t.Fatal(err)
	}
	if r0.MeanLatency != r1.MeanLatency || r0.TotalExitRate != r1.TotalExitRate {
		t.Fatal("parsed spec ran differently from the original")
	}
}

func TestSpecFileWorkloadKindForms(t *testing.T) {
	for _, doc := range []string{
		`{"Workload": {"Kind": "memcached"}}`,
		`{"Workload": {"Kind": 6}}`,
	} {
		s, err := ParseScenarioSpec(strings.NewReader(doc))
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		if s.Workload.Kind != Memcached {
			t.Errorf("%s: Kind = %v, want memcached", doc, s.Workload.Kind)
		}
	}
	if _, err := ParseScenarioSpec(strings.NewReader(`{"Workload": {"Kind": "netperf"}}`)); err == nil {
		t.Error("unknown workload name accepted")
	}
}

func TestSpecFileRejectsBadInput(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"unknown field", `{"Nmae": "typo"}`},
		{"trailing garbage", `{"Name": "a"} {"Name": "b"}`},
		{"invalid value", `{"VMs": 1000}`},
		{"wrong type", `{"Seed": "not-a-number"}`},
	}
	for _, c := range cases {
		if _, err := ParseScenarioSpec(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted %s", c.name, c.doc)
		}
	}
}

func TestClusterSpecFile(t *testing.T) {
	doc := `{
		"Name": "rack-from-file",
		"Seed": 7,
		"Hosts": 3,
		"ClientHosts": 1,
		"VMsPerHost": 2,
		"Workload": {"Flows": 16},
		"Warmup": 20000000,
		"Duration": 50000000,
		"CritPath": true
	}`
	s, err := ParseClusterSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Hosts != 3 || s.Workload.Flows != 16 || !s.CritPath ||
		s.Duration != 50*time.Millisecond {
		t.Fatalf("parsed cluster spec wrong: %+v", s)
	}
	r, err := RunCluster(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.CriticalPath == nil || r.CriticalPath.Requests == 0 {
		t.Fatal("spec-file cluster run produced no critical-path report")
	}
	if _, err := ParseClusterSpec(strings.NewReader(`{"Hosts": 9999}`)); err == nil {
		t.Error("invalid cluster spec accepted")
	}
}
