package es2

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExampleSpecs parse-validates every spec file shipped under
// examples/specs, so a drifting spec surface breaks CI instead of the
// reader following the docs. The filename suffix declares the spec
// type; new files must pick one.
func TestExampleSpecs(t *testing.T) {
	dir := filepath.Join("examples", "specs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("%s holds no example specs", dir)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			switch {
			case strings.HasSuffix(name, "-cluster.json"):
				spec, err := LoadClusterSpec(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := spec.Validate(); err != nil {
					t.Fatal(err)
				}
			case strings.HasSuffix(name, "-load.json"):
				spec, err := LoadLoadSpec(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := spec.Validate(); err != nil {
					t.Fatal(err)
				}
			case strings.HasSuffix(name, "-scenario.json"):
				spec, err := LoadScenarioSpec(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := spec.Validate(); err != nil {
					t.Fatal(err)
				}
			case strings.HasSuffix(name, "-slo.json"):
				spec, err := LoadSLOSpec(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := spec.Validate(); err != nil {
					t.Fatal(err)
				}
			case strings.HasSuffix(name, "-chaos.json"):
				spec, err := LoadChaosSpec(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := spec.Validate(); err != nil {
					t.Fatal(err)
				}
			default:
				t.Fatalf("%s: unknown spec suffix; name it *-cluster, *-load, *-scenario, *-slo or *-chaos .json", name)
			}
		})
	}
}
