package es2

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"es2/internal/vmm"
)

// critSpec is a fast ping scenario with the analyzer on.
func critSpec(cfg Config) ScenarioSpec {
	s := short(cfg, WorkloadSpec{Kind: Ping, PingInterval: time.Millisecond})
	s.CritPath = true
	return s
}

// TestCritPathOffByDefault: the analyzer adds nothing unless asked.
func TestCritPathOffByDefault(t *testing.T) {
	r, err := Run(short(Full(4), WorkloadSpec{Kind: Ping, PingInterval: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if r.CriticalPath != nil {
		t.Fatalf("CriticalPath non-nil without CritPath")
	}
}

// TestCritPathReconciliation checks the analyzer against the
// independently measured latency figures: per-request stage sums match
// the end-to-end latency to well under the 0.1% acceptance bound, the
// aggregate blame sums to the total, and the slowest exemplar is
// exactly the histogram's exact maximum.
func TestCritPathReconciliation(t *testing.T) {
	for _, cfg := range []Config{Baseline(), PIOnly(), Full(4)} {
		r, err := Run(critSpec(cfg))
		if err != nil {
			t.Fatal(err)
		}
		cp := r.CriticalPath
		if cp == nil || cp.Requests == 0 {
			t.Fatalf("%v: empty critical-path report", cfg)
		}
		if cp.MaxSumRelErr > 0.001 {
			t.Errorf("%v: MaxSumRelErr = %g > 0.001", cfg, cp.MaxSumRelErr)
		}
		var stageSum int64
		for _, s := range cp.Stages {
			stageSum += s.TotalNs
		}
		if stageSum != cp.TotalNs {
			t.Errorf("%v: stage totals sum to %d, e2e total %d", cfg, stageSum, cp.TotalNs)
		}
		if len(cp.Exemplars) == 0 {
			t.Fatalf("%v: no exemplars", cfg)
		}
		if cp.Exemplars[0].E2ENs != cp.MaxNs {
			t.Errorf("%v: slowest exemplar %dns != report max %dns", cfg, cp.Exemplars[0].E2ENs, cp.MaxNs)
		}
		// The ping histogram tracks the exact max of the same request
		// population, so the spectrum max and the exemplar max agree.
		if got, want := time.Duration(cp.MaxNs), r.MaxLatency; got != want {
			t.Errorf("%v: exemplar max %v != measured MaxLatency %v", cfg, got, want)
		}
		if got, want := time.Duration(cp.MeanNs), r.MeanLatency; got != want {
			t.Errorf("%v: critpath mean %v != measured mean %v", cfg, got, want)
		}
		for _, ex := range cp.Exemplars {
			var durSum int64
			for _, m := range ex.Marks {
				durSum += m.DurNs
			}
			if durSum != ex.E2ENs {
				t.Errorf("%v: exemplar flow %d seq %d: marks sum %d != e2e %d",
					cfg, ex.Flow, ex.Seq, durSum, ex.E2ENs)
			}
		}
	}
}

// TestCritPathMechanismStages: the interrupt-delivery stage is named
// for the mechanism that delivered it, so the blame profile itself
// shows which path ran.
func TestCritPathMechanismStages(t *testing.T) {
	counts := func(cfg Config) (posted, emulated uint64) {
		r, err := Run(critSpec(cfg))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range r.CriticalPath.Stages {
			switch s.Stage {
			case "irq-posted":
				posted = s.Count
			case "irq-emulated":
				emulated = s.Count
			}
		}
		return
	}
	if posted, emulated := counts(Baseline()); posted != 0 || emulated == 0 {
		t.Errorf("Baseline: posted=%d emulated=%d, want only emulated", posted, emulated)
	}
	if posted, emulated := counts(PIOnly()); posted == 0 || emulated != 0 {
		t.Errorf("PIOnly: posted=%d emulated=%d, want only posted", posted, emulated)
	}
}

// TestCritPathByteIdenticalReplay: the serialized blame profile,
// exemplars and what-if grid replay byte-identically — including a
// faulted run with telemetry, profiling and the invariant checker on,
// the configuration most likely to perturb event order.
func TestCritPathByteIdenticalReplay(t *testing.T) {
	spec := critSpec(PIOnly())
	spec.Telemetry = true
	spec.CPUProfile = true
	spec.Check = true
	spec.Faults = FaultSpec{
		LostKickProb:  0.05,
		PIOutageEvery: 40 * time.Millisecond,
		PIOutage:      10 * time.Millisecond,
	}
	run := func() []byte {
		r, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(r.CriticalPath)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("critical-path JSON differs across replays:\n%s\n---\n%s", a, b)
	}
}

// TestCritPathFaultBlameShift: faults move blame onto the recovery
// path. A PI outage forces emulated delivery on a PI configuration;
// lost kicks stretch the notification stage until the TX watchdog
// recovers the descriptor.
func TestCritPathFaultBlameShift(t *testing.T) {
	stage := func(cp *CriticalPath, name string) *CriticalPathStage {
		for i := range cp.Stages {
			if cp.Stages[i].Stage == name {
				return &cp.Stages[i]
			}
		}
		return nil
	}

	outage := critSpec(PIOnly())
	outage.Faults = FaultSpec{PIOutageEvery: 30 * time.Millisecond, PIOutage: 15 * time.Millisecond}
	r, err := Run(outage)
	if err != nil {
		t.Fatal(err)
	}
	if em := stage(r.CriticalPath, "irq-emulated"); em == nil || em.Count == 0 {
		t.Errorf("PI outage: no irq-emulated traversals (blame did not shift to fallback)")
	}

	clean, err := Run(critSpec(Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	kicks := critSpec(Baseline())
	kicks.Faults = FaultSpec{LostKickProb: 0.2}
	faulted, err := Run(kicks)
	if err != nil {
		t.Fatal(err)
	}
	cn, fn := stage(clean.CriticalPath, "notify-exit"), stage(faulted.CriticalPath, "notify-exit")
	if cn == nil || fn == nil {
		t.Fatal("notify-exit stage missing")
	}
	if fn.MeanNs <= cn.MeanNs {
		t.Errorf("lost kicks: notify-exit mean %v not above clean %v",
			time.Duration(fn.MeanNs), time.Duration(cn.MeanNs))
	}
}

// TestCritPathWhatIfDirectional validates the Coz-style estimator
// against an actual mechanism change: halving the interrupt-delivery
// costs in the hypervisor cost model must move the measured latency in
// the direction (and to roughly the magnitude) the estimator predicted
// from the unmodified run alone.
func TestCritPathWhatIfDirectional(t *testing.T) {
	base := critSpec(Baseline())
	r0, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	var pred *CriticalPathWhatIf
	for i := range r0.CriticalPath.WhatIf {
		if r0.CriticalPath.WhatIf[i].Stage == "irq-emulated" {
			pred = &r0.CriticalPath.WhatIf[i]
		}
	}
	if pred == nil {
		t.Fatal("no what-if row for irq-emulated")
	}
	if pred.P50DeltaNs >= 0 || pred.MeanDeltaNs >= 0 {
		t.Fatalf("predicted deltas not negative: p50 %d mean %d", pred.P50DeltaNs, pred.MeanDeltaNs)
	}

	// Actually speed the delivery stage up: halve the exit, IPI and
	// injection-entry costs that compose emulated delivery, and rerun.
	costs := vmm.DefaultCosts()
	costs.ExtIntrExit /= 2
	costs.InjectionEntry /= 2
	costs.IPILatency /= 2
	fast := base
	fast.testCosts = &costs
	r1, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	actual := r1.CriticalPath.P50Ns - r0.CriticalPath.P50Ns
	if actual >= 0 {
		t.Fatalf("halved delivery costs did not reduce p50: delta %d", actual)
	}
	// Direction agrees; the magnitudes need not be equal (the stage
	// includes pipeline costs the knobs do not touch), but the
	// prediction must not point at a change an order of magnitude away.
	if pred.P50DeltaNs < 4*actual {
		t.Errorf("prediction %v wildly overshoots actual %v",
			time.Duration(pred.P50DeltaNs), time.Duration(actual))
	}
}

// TestCritPathMemcachedReconciles: the RPC-style workload (server in
// the guest, chains opened at the peer client) reconciles too.
func TestCritPathMemcachedReconciles(t *testing.T) {
	s := short(Full(4), WorkloadSpec{Kind: Memcached})
	s.CritPath = true
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	cp := r.CriticalPath
	if cp == nil || cp.Requests == 0 {
		t.Fatal("empty report")
	}
	if cp.MaxSumRelErr > 0.001 {
		t.Errorf("MaxSumRelErr = %g > 0.001", cp.MaxSumRelErr)
	}
	if got, want := time.Duration(cp.MaxNs), r.MaxLatency; got != want {
		t.Errorf("exemplar max %v != measured MaxLatency %v", got, want)
	}
	// The guest server must contribute a visible service stage.
	var service int64
	for _, st := range cp.Stages {
		if st.Stage == "service" {
			service = st.TotalNs
		}
	}
	if service == 0 {
		t.Error("no service-stage contribution from the guest server")
	}
}

// TestCritPathCluster: the rack-wide analyzer labels blame per host,
// the host split reconciles with the aggregate, chains cross the
// fabric, and the whole report replays byte-identically.
func TestCritPathCluster(t *testing.T) {
	spec := smallCluster(Full(4))
	spec.CritPath = true
	run := func() *ClusterResult {
		r, err := RunCluster(spec)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := run()
	cp := r.CriticalPath
	if cp == nil || cp.Requests == 0 {
		t.Fatal("empty cluster critical-path report")
	}
	if cp.MaxSumRelErr > 0.001 {
		t.Errorf("MaxSumRelErr = %g > 0.001", cp.MaxSumRelErr)
	}
	if len(cp.HostStages) == 0 {
		t.Fatal("no per-host blame rows")
	}
	hosts := map[string]bool{}
	var hostSum, stageSum int64
	for _, s := range cp.HostStages {
		if s.Host == "" {
			t.Fatalf("host label missing on %q", s.Stage)
		}
		hosts[s.Host] = true
		hostSum += s.TotalNs
	}
	for _, s := range cp.Stages {
		stageSum += s.TotalNs
	}
	// Every stage nanosecond is attributed to exactly one host (wire
	// transit is charged to the receiving host's NIC), so the host
	// split telescopes to the aggregate exactly.
	if hostSum != stageSum {
		t.Errorf("host split %d != aggregate %d", hostSum, stageSum)
	}
	for _, h := range []string{"h0", "h1"} {
		if !hosts[h] {
			t.Errorf("no blame rows for host %s (got %v)", h, hosts)
		}
	}
	if len(cp.Exemplars) == 0 || cp.Exemplars[0].FabricHops == 0 {
		t.Error("slowest exemplar crossed no fabric hops; cluster RPCs must")
	}

	a, _ := json.Marshal(cp)
	b, _ := json.Marshal(run().CriticalPath)
	if !bytes.Equal(a, b) {
		t.Fatal("cluster critical-path JSON differs across replays")
	}
}
