package es2

import (
	"time"

	"es2/internal/loadgen"
	"es2/internal/metrics"
	"es2/internal/sim"
)

// LoadSpec declares an open-loop load profile for a run (see
// internal/loadgen for the knob semantics): heterogeneous client
// classes with Zipf-skewed per-stream rates, deterministic arrival
// processes (Poisson, Gamma, Weibull burst trains), fan-out patterns,
// and a day-shaped profile of named phases with diurnal scaling and
// time compression. The zero value disables open-loop load and keeps
// the closed-loop workload. Arrivals never observe the system under
// test, so the offered sequence is a pure function of spec and seed —
// identical across configurations, which is what makes "Full ES2
// sustains more of the same offered load" a fair comparison.
type LoadSpec = loadgen.Spec

// LoadClass is one client population of a LoadSpec.
type LoadClass = loadgen.Class

// LoadProfile is the day shape of a LoadSpec: named phases, diurnal
// curve, time compression.
type LoadProfile = loadgen.Profile

// LoadPhase is one named phase of a LoadProfile.
type LoadPhase = loadgen.Phase

// loadSeedSalt decorrelates the load generator's RNG root from the
// engine's: arrival draws come from sim.NewRand(seed ^ loadSeedSalt),
// forked per stream in build order, never from the engine stream the
// system under test consumes.
const loadSeedSalt = 0x6f70656e6c6f6f70 // "openloop"

// kneeSustainRatio is the delivery-ratio floor a phase must hold for
// its offered rate to count as sustained (the collapse-knee metric).
const kneeSustainRatio = 0.95

// LoadPhaseReport is one profile phase's measured window: offered
// versus completed load and the latency spectrum of requests that
// arrived during the phase.
type LoadPhaseReport struct {
	Name       string  `json:"name"`
	Multiplier float64 `json:"multiplier"`
	// Offered/Shed/Completed count requests billed to the phase (by
	// arrival instant; completions may land in a later phase's wall
	// time but are attributed to their arrival's phase).
	Offered   uint64 `json:"offered"`
	Shed      uint64 `json:"shed"`
	Completed uint64 `json:"completed"`
	// OfferedPerSec and CompletedPerSec divide by the phase's simulated
	// window length.
	OfferedPerSec   float64 `json:"offered_per_sec"`
	CompletedPerSec float64 `json:"completed_per_sec"`
	// DeliveryRatio is Completed/Offered (0 when nothing was offered).
	DeliveryRatio float64 `json:"delivery_ratio"`
	// P50/P99 summarize the phase's completion latency.
	P50Latency time.Duration `json:"p50_latency_ns"`
	P99Latency time.Duration `json:"p99_latency_ns"`
}

// LoadReport is the open-loop outcome of a run: offered-vs-completed
// totals, shed and backlog counts, per-phase windows, and the collapse
// knee — the highest per-phase offered rate the system sustained at a
// delivery ratio of at least 0.95. Part of the deterministic JSON
// surface.
type LoadReport struct {
	// TimeScale is the resolved compression factor (modeled seconds per
	// simulated second).
	TimeScale float64 `json:"time_scale"`
	// Streams is the total stream count across classes.
	Streams int `json:"streams"`

	// Arrivals sums the per-stream arrival counters. It is accumulated
	// independently of Offered (streams count their own arrivals, the
	// client counts offered load) and always equals it exactly — the
	// reconciliation invariant tests pin down.
	Arrivals uint64 `json:"arrivals"`
	// Offered counts arrivals in the window; Admitted those that
	// entered the system; Shed those dropped at a full outstanding cap;
	// Completed logical requests finished in the window.
	Offered   uint64 `json:"offered"`
	Admitted  uint64 `json:"admitted"`
	Shed      uint64 `json:"shed"`
	Completed uint64 `json:"completed"`
	// BacklogEnd is the number of requests still in flight at the
	// horizon — the queue an overloaded system never drained.
	BacklogEnd int `json:"backlog_end"`

	OfferedPerSec   float64 `json:"offered_per_sec"`
	CompletedPerSec float64 `json:"completed_per_sec"`
	// DeliveryRatio is Completed/Offered over the whole window.
	DeliveryRatio float64 `json:"delivery_ratio"`

	// KneeOfferedPerSec is the highest phase offered rate with a
	// delivery ratio of at least 0.95 — where the run's collapse knee
	// sits. Zero when no phase was sustained.
	KneeOfferedPerSec float64 `json:"knee_offered_per_sec"`

	// Phases lists the per-phase windows in profile order.
	Phases []LoadPhaseReport `json:"phases"`
}

// loadStream is one expanded stream of a LoadSpec: its class, the
// class's (defaulted) parameters and its Zipf-weighted share of the
// class rate.
type loadStream struct {
	class int
	cls   LoadClass
	rate  float64
}

// expandLoadStreams flattens a defaulted LoadSpec into per-stream
// parameters in deterministic (class, stream) order — the order RNG
// forks and flow ids are assigned in.
func expandLoadStreams(s LoadSpec) []loadStream {
	var out []loadStream
	for ci, cls := range s.Classes {
		w := loadgen.ZipfWeights(cls.Streams, cls.ZipfS)
		classRate := cls.RatePerSec * float64(cls.Streams)
		for si := 0; si < cls.Streams; si++ {
			out = append(out, loadStream{class: ci, cls: cls, rate: classRate * w[si]})
		}
	}
	return out
}

// newLoadSampler builds stream i's arrival sampler on a fork of the
// load RNG root (callers fork in expandLoadStreams order).
func newLoadSampler(cls LoadClass, rng *sim.Rand) *loadgen.Sampler {
	proc, _ := loadgen.ParseProcess(cls.Process)
	return loadgen.NewSampler(proc, cls.Shape, rng)
}

// loadTotals are the window counters a runner accumulates for the
// report (summed over clients in the cluster case).
type loadTotals struct {
	arrivals                           uint64
	offered, admitted, shed, completed uint64
	phaseOffered                       []uint64
	phaseShed                          []uint64
	phaseCompleted                     []uint64
	backlog                            int
}

// buildLoadReport assembles the LoadReport from the window counters,
// the per-phase latency spectra and the resolved profile runtime.
func buildLoadReport(rt *loadgen.Runtime, t loadTotals, phaseHists []*metrics.LogHistogram, streams int, window, horizon sim.Time) *LoadReport {
	rep := &LoadReport{
		TimeScale: rt.TimeScale(),
		Streams:   streams,
		Arrivals:  t.arrivals,
		Offered:   t.offered, Admitted: t.admitted,
		Shed: t.shed, Completed: t.completed,
		BacklogEnd:      t.backlog,
		OfferedPerSec:   rate(t.offered, window),
		CompletedPerSec: rate(t.completed, window),
	}
	if t.offered > 0 {
		rep.DeliveryRatio = float64(t.completed) / float64(t.offered)
	}
	for i := 0; i < rt.NumPhases(); i++ {
		start, end := rt.PhaseSimWindow(i, horizon)
		pr := LoadPhaseReport{
			Name:       rt.PhaseName(i),
			Multiplier: rt.PhaseMultiplier(i),
		}
		if i < len(t.phaseOffered) {
			pr.Offered, pr.Shed, pr.Completed = t.phaseOffered[i], t.phaseShed[i], t.phaseCompleted[i]
		}
		if span := end - start; span > 0 {
			pr.OfferedPerSec = rate(pr.Offered, span)
			pr.CompletedPerSec = rate(pr.Completed, span)
		}
		if pr.Offered > 0 {
			pr.DeliveryRatio = float64(pr.Completed) / float64(pr.Offered)
			if pr.DeliveryRatio >= kneeSustainRatio && pr.OfferedPerSec > rep.KneeOfferedPerSec {
				rep.KneeOfferedPerSec = pr.OfferedPerSec
			}
		}
		if i < len(phaseHists) && phaseHists[i] != nil && phaseHists[i].Count() > 0 {
			pr.P50Latency = time.Duration(phaseHists[i].Quantile(0.50))
			pr.P99Latency = time.Duration(phaseHists[i].Quantile(0.99))
		}
		rep.Phases = append(rep.Phases, pr)
	}
	return rep
}
