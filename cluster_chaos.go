package es2

import (
	"fmt"
	"sort"

	"es2/internal/faults"
	"es2/internal/sim"
)

// availWindows is the sub-window count behind RecoveryReport's
// availability metric.
const availWindows = 100

// chaosFault is one scheduled macro-fault with its measured recovery.
type chaosFault struct {
	ev    faults.ChaosEvent
	start sim.Time // absolute injection instant
	end   sim.Time // absolute outage end
	// mttr is fault start to the first cluster-wide RPC completion at
	// or after end; -1 until (unless) that completion happens.
	mttr sim.Time
}

// serverRef names one server VM for failover targeting.
type serverRef struct {
	h  *clusterHost
	vi int
}

// chaosController drives a cluster's chaos timeline: it injects the
// scheduled macro-faults, answers the clients' failover requests from
// the authoritative flow table, and keeps the recovery bookkeeping
// (MTTR, availability windows, degraded-phase goodput) that collect
// turns into ClusterResult.Recovery. All state changes happen inside
// engine events, so chaotic runs replay byte-identically.
type chaosController struct {
	cb *clusterBed

	faults     []*chaosFault // timeline order
	unresolved []*chaosFault // awaiting first post-outage completion, by end

	hostDown  []bool
	downHosts int

	// active counts faults currently in effect; transitions accumulate
	// degraded time.
	active       int
	degradedFrom sim.Time
	degradedNs   sim.Time

	winStart sim.Time
	winLen   sim.Time
	buckets  [availWindows]bool

	degradedDone uint64
	healthyDone  uint64

	// Failover flow table: flowServer maps flow id -> index into
	// servers (its current binding).
	servers    []serverRef
	flowServer map[int]int
}

// install materializes the timeline from the controller's private RNG
// fork and schedules every fault. Faults start strictly after the
// warmup boundary; spec validation guarantees the whole timeline —
// including recovery — fits the measurement window.
func (cc *chaosController) install(rng *sim.Rand, warm, window sim.Time) {
	cc.winStart = warm
	cc.winLen = window
	spec := cc.cb.spec
	for _, ev := range spec.Chaos.BuildTimeline(rng, spec.Hosts) {
		f := &chaosFault{ev: ev, start: warm + ev.At, end: warm + ev.At + ev.Duration, mttr: -1}
		cc.faults = append(cc.faults, f)
		cc.unresolved = append(cc.unresolved, f)
		cc.cb.eng.At(f.start, func() { cc.apply(f) })
	}
	sort.SliceStable(cc.unresolved, func(i, j int) bool {
		return cc.unresolved[i].end < cc.unresolved[j].end
	})
}

// reset clears the window-scoped bookkeeping at warmup end. The
// timeline itself is untouched: every fault fires after this point.
func (cc *chaosController) reset() {
	cc.degradedNs = 0
	cc.degradedDone, cc.healthyDone = 0, 0
	cc.buckets = [availWindows]bool{}
}

// apply injects one fault and schedules its recovery.
func (cc *chaosController) apply(f *chaosFault) {
	cb := cc.cb
	h := cb.hosts[f.ev.Target]
	if cc.active == 0 {
		cc.degradedFrom = cb.eng.Now()
	}
	cc.active++
	switch f.ev.Kind {
	case faults.ChaosHostCrash:
		// Fail-stop with RAM intact: scheduling tears down, the link
		// drops, the tap backlog is lost; virtqueues and flow state
		// survive for the warm recovery.
		cc.hostDown[h.index] = true
		cc.downHosts++
		h.sch.Freeze()
		h.port.SetLinkDown(f.end)
		for _, d := range h.devs {
			d.DropBacklog()
		}
		cb.eng.At(f.end, func() {
			cc.hostDown[h.index] = false
			cc.downHosts--
			h.sch.Unfreeze()
			cc.expire(f)
		})
	case faults.ChaosHostFreeze:
		// Hard lockup: nothing schedules, but the link stays up and
		// ingress piles into the (bounded) backlogs until the thaw.
		cc.hostDown[h.index] = true
		cc.downHosts++
		h.sch.Freeze()
		cb.eng.At(f.end, func() {
			cc.hostDown[h.index] = false
			cc.downHosts--
			h.sch.Unfreeze()
			cc.expire(f)
		})
	case faults.ChaosLinkFlap:
		h.port.SetLinkDown(f.end)
		cb.eng.At(f.end, func() { cc.expire(f) })
	case faults.ChaosLinkDegrade:
		h.port.SetDegraded(f.end, f.ev.Factor)
		cb.eng.At(f.end, func() { cc.expire(f) })
	case faults.ChaosBlackhole:
		h.port.SetBlackhole(f.end)
		cb.eng.At(f.end, func() { cc.expire(f) })
	}
}

// expire marks one fault's outage window over.
func (cc *chaosController) expire(f *chaosFault) {
	cc.active--
	if cc.active == 0 {
		cc.degradedNs += cc.cb.eng.Now() - cc.degradedFrom
	}
}

// noteCompletion observes every completed RPC (the clients'
// NotifyComplete hook): availability buckets, the degraded/healthy
// goodput split, and MTTR resolution for ended faults.
func (cc *chaosController) noteCompletion(now sim.Time) {
	if now < cc.winStart || cc.winLen <= 0 {
		return
	}
	i := int((now - cc.winStart) * availWindows / cc.winLen)
	if i >= availWindows {
		i = availWindows - 1
	}
	cc.buckets[i] = true
	if cc.active > 0 {
		cc.degradedDone++
	} else {
		cc.healthyDone++
	}
	for len(cc.unresolved) > 0 && now >= cc.unresolved[0].end {
		f := cc.unresolved[0]
		f.mttr = now - f.start
		cc.unresolved = cc.unresolved[1:]
	}
}

// serverImpaired reports whether a server VM's host cannot currently
// serve (scheduler down, or its port dropping/blackholing frames).
func (cc *chaosController) serverImpaired(r serverRef) bool {
	return cc.hostDown[r.h.index] || r.h.port.Impaired()
}

// failover re-balances one flow away from its impaired server: the
// clients call it after FailoverAfter consecutive timeouts. It scans
// the server ring from the current binding for the first healthy VM
// and rebinds the flow's receive-side steering and switch route.
// Returns false when the current server is actually healthy (the
// timeouts had another cause) or no healthy server exists yet.
func (cc *chaosController) failover(flowID int) bool {
	cur, ok := cc.flowServer[flowID]
	if !ok {
		return false
	}
	if !cc.serverImpaired(cc.servers[cur]) {
		return false
	}
	ns := len(cc.servers)
	for off := 1; off < ns; off++ {
		ni := (cur + off) % ns
		cand := cc.servers[ni]
		if cc.serverImpaired(cand) {
			continue
		}
		// Rebind: steering entry on the surviving host, flow table to
		// its port. The old host's entry is left in place so stale
		// responses still route back to the client and are ignored by
		// request id there.
		qi := flowID % cc.cb.spec.Queues
		cand.h.demux.byFlow[flowID] = cand.h.devsByVM[cand.vi][qi]
		pp := cc.cb.flowPorts[flowID]
		cc.cb.flowPorts[flowID] = [2]int{pp[0], cand.h.port.Index()}
		cc.flowServer[flowID] = ni
		return true
	}
	return false
}

// activeFaults names every fault currently in effect ("host_crash h2",
// "link_flap port5"), using the same target naming as the recovery
// report. The SLO evaluator attaches the list to alert events so a
// fired alert carries its probable cause.
func (cc *chaosController) activeFaults() []string {
	now := cc.cb.eng.Now()
	var names []string
	for _, f := range cc.faults {
		if f.start <= now && now < f.end {
			target := fmt.Sprintf("h%d", f.ev.Target)
			switch f.ev.Kind {
			case faults.ChaosLinkFlap, faults.ChaosLinkDegrade, faults.ChaosBlackhole:
				target = fmt.Sprintf("port%d", f.ev.Target)
			}
			names = append(names, f.ev.Kind.String()+" "+target)
		}
	}
	return names
}

// report assembles ClusterResult.Recovery at the horizon.
func (cc *chaosController) report(window sim.Time) *RecoveryReport {
	cb := cc.cb
	deg := cc.degradedNs
	if cc.active > 0 {
		// Defensive: validation keeps every outage inside the window,
		// so this only triggers if a spec change breaks that bound.
		deg += cb.eng.Now() - cc.degradedFrom
	}
	rep := &RecoveryReport{TotalWindows: availWindows}
	for _, f := range cc.faults {
		target := fmt.Sprintf("h%d", f.ev.Target)
		switch f.ev.Kind {
		case faults.ChaosHostCrash:
			rep.HostCrashes++
		case faults.ChaosHostFreeze:
			rep.HostFreezes++
		case faults.ChaosLinkFlap:
			rep.LinkFlaps++
			target = fmt.Sprintf("port%d", f.ev.Target)
		case faults.ChaosLinkDegrade:
			rep.LinkDegrades++
			target = fmt.Sprintf("port%d", f.ev.Target)
		case faults.ChaosBlackhole:
			rep.Blackholes++
			target = fmt.Sprintf("port%d", f.ev.Target)
		}
		rf := RecoveryFault{
			Kind:     f.ev.Kind.String(),
			Target:   target,
			StartMs:  float64(f.start-cc.winStart) / 1e6,
			OutageMs: float64(f.end-f.start) / 1e6,
			MTTRMs:   -1,
		}
		if f.mttr >= 0 {
			rf.MTTRMs = float64(f.mttr) / 1e6
		}
		rep.Faults = append(rep.Faults, rf)
	}
	for i := 0; i < cb.sw.NumPorts(); i++ {
		p := cb.sw.Port(i)
		rep.LinkDrops += p.LinkDrops
		rep.BlackholeDrops += p.BlackholeDrops
	}
	for _, up := range cc.buckets {
		if up {
			rep.AvailableWindows++
		}
	}
	rep.Availability = float64(rep.AvailableWindows) / float64(availWindows)
	rep.DegradedSeconds = deg.Seconds()
	if deg > 0 {
		rep.DegradedOpsPerSec = float64(cc.degradedDone) / deg.Seconds()
	}
	if healthy := window - deg; healthy > 0 {
		rep.HealthyOpsPerSec = float64(cc.healthyDone) / healthy.Seconds()
	}
	for _, h := range cb.hosts {
		for _, c := range h.clients {
			rep.Timeouts += c.Timeouts
			rep.Retries += c.Retries
			rep.MigratedFlows += c.Migrated
			for _, f := range c.Flows() {
				if f.Completed == 0 && !f.Migrated {
					rep.FlowsUnaccounted++
				}
			}
		}
	}
	return rep
}
