package es2

import (
	"math"
	"testing"
	"time"

	"es2/internal/sim"
)

// FuzzScenarioSpec is the validation-surface contract test: for every
// spec the fuzzer can construct, Run either returns a result or an
// error — it never panics — and Validate's verdict agrees with Run's.
// Simulated time is pinned tiny so valid specs execute in microseconds
// of wall time.
func FuzzScenarioSpec(f *testing.F) {
	f.Add(1, 1, 1, 1, 1, int64(0), 1024, 4, 0.0, 0.0, 0.0, int64(0), int64(0), false, false)
	f.Add(4, 4, 4, 2, 2, int64(1), 64, 128, 0.5, 0.5, 450_000.0, int64(time.Millisecond), int64(time.Microsecond), true, false)
	f.Add(-1, 0, 99, -3, 17, int64(6), -5, 1<<30, 1.5, math.Inf(1), math.NaN(), int64(-time.Second), int64(time.Hour), false, true)
	f.Add(33, 1000, 2, 5, 0, int64(9), 0, 0, -0.1, 2.0, 1e12, int64(time.Minute), int64(0), true, true)

	f.Fuzz(func(t *testing.T, vms, vcpus, vmCores, vhostCores, queues int,
		kind int64, msg, window int, lossProb, kickProb, rate float64,
		stallEvery, stall int64, hybrid, sidecore bool) {

		cfg := Config{}
		if hybrid {
			cfg = PIH(4)
		}
		spec := ScenarioSpec{
			Name: "fuzz", Seed: 1, Config: cfg,
			Workload: es2Workload(kind, msg, window, rate),
			VMs:      vms, VCPUs: vcpus, VMCores: vmCores,
			VhostCores: vhostCores, Queues: queues,
			Sidecore: sidecore,
			Faults: FaultSpec{
				PacketLossProb:  lossProb,
				LostKickProb:    kickProb,
				VhostStallEvery: time.Duration(stallEvery),
				VhostStall:      time.Duration(stall),
			},
			Warmup:   time.Millisecond,
			Duration: 2 * time.Millisecond,
		}

		verr := spec.Validate()
		res, rerr := Run(spec) // must never panic
		if verr != nil && rerr == nil {
			t.Fatalf("Validate rejected (%v) but Run accepted", verr)
		}
		if verr == nil && rerr != nil {
			t.Fatalf("Validate accepted but Run failed: %v", rerr)
		}
		if rerr == nil && res == nil {
			t.Fatal("Run returned neither result nor error")
		}
	})
}

func es2Workload(kind int64, msg, window int, rate float64) WorkloadSpec {
	return WorkloadSpec{
		Kind:     WorkloadKind(kind),
		MsgBytes: msg, Window: window,
		UDPRatePPS: rate,
	}
}

// FuzzChaosSpec is the chaos-timeline validation contract: for every
// ChaosSpec the fuzzer can construct, Validate never panics, and every
// spec it accepts materializes — via BuildTimeline — into a schedule
// whose event count, ordering, targets and durations are all in
// bounds. Accepted specs are also attached to a tiny cluster so the
// cluster-level Validate/RunCluster agreement holds under chaos.
func FuzzChaosSpec(f *testing.F) {
	f.Add(1, int64(12*time.Millisecond), 2, int64(3*time.Millisecond), 0, int64(0), 0.0,
		int64(4*time.Millisecond), int64(10*time.Millisecond))
	f.Add(0, int64(0), 0, int64(0), 0, int64(0), 0.0, int64(0), int64(0))
	f.Add(-3, int64(-1), 99, int64(time.Hour), 2, int64(time.Millisecond), 1.5,
		int64(time.Second), int64(time.Microsecond))
	f.Add(16, int64(500*time.Microsecond), 16, int64(250*time.Microsecond), 16,
		int64(100*time.Microsecond), 0.5, int64(0), int64(200*time.Microsecond))

	f.Fuzz(func(t *testing.T, crashes int, crashDown int64, flaps int, flapDown int64,
		degrades int, degradeFor int64, degradeFactor float64, minGap, maxGap int64) {

		spec := ChaosSpec{
			HostCrashes:   crashes,
			CrashDown:     time.Duration(crashDown),
			LinkFlaps:     flaps,
			FlapDown:      time.Duration(flapDown),
			LinkDegrades:  degrades,
			DegradeFor:    time.Duration(degradeFor),
			DegradeFactor: degradeFactor,
			MinGap:        time.Duration(minGap),
			MaxGap:        time.Duration(maxGap),
		}
		verr := spec.Validate() // must never panic
		if verr == nil {
			const hosts = 4
			rng := sim.NewRand(1)
			events := spec.BuildTimeline(rng, hosts)
			if len(events) != spec.Events() {
				t.Fatalf("timeline has %d events, spec configures %d", len(events), spec.Events())
			}
			last := sim.Time(0)
			for _, ev := range events {
				if ev.At <= 0 || ev.At < last {
					t.Fatalf("event at %v out of order (previous %v)", ev.At, last)
				}
				last = ev.At
				if ev.Duration <= 0 {
					t.Fatalf("event %v has non-positive duration %v", ev.Kind, ev.Duration)
				}
				if ev.Target < 0 || ev.Target >= hosts {
					t.Fatalf("event targets host %d of %d", ev.Target, hosts)
				}
			}
		}

		cluster := ClusterSpec{
			Name: "fuzz-chaos", Seed: 1, Config: Full(4),
			Hosts: 2, ClientHosts: 1, VMsPerHost: 1, VCPUs: 1,
			VMCores: 1, VhostCores: 1,
			Workload: ClusterWorkloadSpec{Flows: 2, RequestTimeout: 500 * time.Microsecond,
				RetryBackoff: 50 * time.Microsecond, FailoverAfter: 2},
			Chaos:  spec,
			Warmup: time.Millisecond, Duration: 4 * time.Millisecond,
		}
		cverr := cluster.Validate()
		res, rerr := RunCluster(cluster) // must never panic
		if cverr != nil && rerr == nil {
			t.Fatalf("cluster Validate rejected (%v) but RunCluster accepted", cverr)
		}
		if cverr == nil && rerr != nil {
			t.Fatalf("cluster Validate accepted but RunCluster failed: %v", rerr)
		}
		if rerr == nil && res == nil {
			t.Fatal("RunCluster returned neither result nor error")
		}
		if rerr == nil && spec.Enabled() && res.Recovery == nil {
			t.Fatal("chaos enabled but RunCluster produced no recovery report")
		}
	})
}

// FuzzSLOSpec is the SLO validation contract: for every SLOSpec the
// fuzzer can construct, Validate never panics, and any spec it accepts
// runs end-to-end on a tiny cluster — producing an SLO report whose
// invariants (tick count, event pairing, burn arithmetic) hold — with
// Validate's verdict agreeing with RunCluster's.
func FuzzSLOSpec(f *testing.F) {
	f.Add("availability", "", 0.999, int64(0), 0.0, int64(0), int64(0), 0.0, 0.0, 0, int64(time.Millisecond))
	f.Add("latency", "tail", 0.99, int64(20*time.Millisecond), 0.0,
		int64(5*time.Millisecond), int64(20*time.Millisecond), 8.0, 2.0, 10, int64(500*time.Microsecond))
	f.Add("goodput", "floor", 0.9, int64(0), 1000.0, int64(0), int64(0), 14.4, 6.0, 1, int64(2*time.Millisecond))
	f.Add("uptime", "x", 1.5, int64(-1), math.Inf(1), int64(time.Hour), int64(time.Microsecond),
		math.NaN(), -2.0, -7, int64(0))

	f.Fuzz(func(t *testing.T, kind, name string, target float64, threshold int64,
		minOps float64, fastWin, slowWin int64, fastBurn, slowBurn float64,
		minSamples int, window int64) {

		spec := SLOSpec{
			Window: time.Duration(window),
			Objectives: []SLOObjective{{
				Name: name, Kind: kind, Target: target,
				Threshold:    time.Duration(threshold),
				MinOpsPerSec: minOps,
				FastWindow:   time.Duration(fastWin),
				SlowWindow:   time.Duration(slowWin),
				FastBurn:     fastBurn, SlowBurn: slowBurn,
				MinSamples: minSamples,
			}},
		}
		verr := spec.Validate() // must never panic

		cluster := ClusterSpec{
			Name: "fuzz-slo", Seed: 1, Config: Full(4),
			Hosts: 2, ClientHosts: 1, VMsPerHost: 1, VCPUs: 1,
			VMCores: 1, VhostCores: 1,
			Workload: ClusterWorkloadSpec{Flows: 2, RequestTimeout: 500 * time.Microsecond,
				RetryBackoff: 50 * time.Microsecond, FailoverAfter: 2},
			SLO:    spec,
			Warmup: time.Millisecond, Duration: 4 * time.Millisecond,
		}
		cverr := cluster.Validate()
		res, rerr := RunCluster(cluster) // must never panic
		if cverr != nil && rerr == nil {
			t.Fatalf("cluster Validate rejected (%v) but RunCluster accepted", cverr)
		}
		if cverr == nil && rerr != nil {
			t.Fatalf("cluster Validate accepted but RunCluster failed: %v", rerr)
		}
		if verr != nil && cverr == nil {
			t.Fatalf("SLO Validate rejected (%v) but cluster Validate accepted", verr)
		}
		if rerr != nil {
			return
		}
		rep := res.SLO
		if rep == nil {
			t.Fatal("SLO spec accepted but ClusterResult.SLO is nil")
		}
		if rep.Ticks <= 0 {
			t.Fatalf("accepted spec never ticked: %+v", rep)
		}
		if rep.Fires != rep.Clears+rep.ActiveAtEnd {
			t.Fatalf("event arithmetic broken: fires=%d clears=%d active=%d",
				rep.Fires, rep.Clears, rep.ActiveAtEnd)
		}
		if len(rep.Events) != rep.Fires+rep.Clears {
			t.Fatalf("timeline has %d events, counters say %d",
				len(rep.Events), rep.Fires+rep.Clears)
		}
		lastAt := -1.0
		for _, e := range rep.Events {
			if e.AtMs < lastAt {
				t.Fatalf("timeline out of order: %.3f after %.3f", e.AtMs, lastAt)
			}
			lastAt = e.AtMs
			if e.Type != "fire" && e.Type != "clear" {
				t.Fatalf("unknown event type %q", e.Type)
			}
		}
		for _, o := range rep.Objectives {
			if o.Bad < 0 || (o.Total > 0 && o.Bad > o.Total) {
				t.Fatalf("objective %s counts out of range: bad=%g total=%g", o.Name, o.Bad, o.Total)
			}
		}
	})
}

// FuzzLoadSpec is the open-loop load validation contract: for every
// LoadSpec the fuzzer can construct, Validate never panics, any spec
// the cluster accepts runs end-to-end on a tiny rack with Validate's
// verdict agreeing with RunCluster's, and every successful run's load
// report reconciles (arrivals == offered == admitted + shed).
func FuzzLoadSpec(f *testing.F) {
	f.Add("web", 2, 2000.0, 1.1, "poisson", 0.0, "single", 0, 16,
		int64(24*time.Hour), int64(12*time.Hour), 1.5, 0.0, 0.2, 0.5)
	f.Add("scatter", 2, 500.0, 0.0, "weibull", 0.7, "scatter", 2, 8,
		int64(time.Hour), int64(30*time.Minute), 0.5, 100.0, 0.0, 0.0)
	f.Add("incast", 1, 800.0, 0.5, "gamma", 0.5, "incast", 0, 4,
		int64(24*time.Hour), int64(8*time.Hour), 2.0, 0.0, 0.3, 0.25)
	f.Add("", -3, math.Inf(1), math.NaN(), "pareto", -1.0, "broadcast", -2, -5,
		int64(-1), int64(0), math.NaN(), math.Inf(-1), 2.0, -0.5)

	f.Fuzz(func(t *testing.T, name string, streams int, rate, zipfS float64,
		process string, shape float64, fanOut string, fanWidth, maxOut int,
		day, start2 int64, mult2, timeScale, amp, peak float64) {

		spec := LoadSpec{
			Classes: []LoadClass{{
				Name: name, Streams: streams, RatePerSec: rate, ZipfS: zipfS,
				Process: process, Shape: shape,
				FanOut: fanOut, FanWidth: fanWidth, MaxOutstanding: maxOut,
			}},
			Profile: LoadProfile{
				Day: time.Duration(day),
				Phases: []LoadPhase{
					{Name: "p0", Start: 0, Multiplier: 1},
					{Name: "p1", Start: time.Duration(start2), Multiplier: mult2},
				},
				TimeScale:        timeScale,
				DiurnalAmplitude: amp,
				DiurnalPeak:      peak,
			},
		}
		_ = spec.Validate() // must never panic

		cluster := ClusterSpec{
			Name: "fuzz-load", Seed: 1, Config: Full(4),
			Hosts: 2, ClientHosts: 1, VMsPerHost: 1, VCPUs: 1,
			VMCores: 1, VhostCores: 1,
			Workload: ClusterWorkloadSpec{Load: spec},
			Warmup:   time.Millisecond, Duration: 4 * time.Millisecond,
		}
		cverr := cluster.Validate()
		if cverr == nil {
			// Accepted specs can still offer absurd event counts (many
			// streams at extreme rates, scatter fan-outs up to 64 wide);
			// validation bounds each knob, not the product. Cap the
			// projected RPC legs so a fuzz case stays fast, without
			// weakening the Validate-never-panics coverage. Project from
			// the defaulted spec: zero knobs (rate, width) fill in there.
			d := spec.WithDefaults()
			// Dormant streams (multiplier 0) re-poll every DormantTick, so
			// event volume also scales with raw stream count independent of
			// the offered rate — bound that too.
			if d.TotalStreams() > 512 {
				return
			}
			var projected float64
			maxMult := (1 + math.Abs(d.Profile.DiurnalAmplitude)) *
				math.Max(d.Profile.Phases[0].Multiplier, d.Profile.Phases[1].Multiplier)
			for _, c := range d.Classes {
				// Sub-0.5 burst shapes put nearly all their mass in
				// near-zero gaps (the mean rides on rare capped tail
				// draws), inflating the effective rate far past the
				// projection — exercise those deterministically, not here.
				if c.Process != "poisson" && c.Shape < 0.5 {
					return
				}
				projected += float64(c.Streams) * c.RatePerSec * maxMult *
					math.Max(1, float64(c.FanWidth)) * (5 * time.Millisecond).Seconds()
			}
			if projected > 20_000 {
				return
			}
		}
		res, rerr := RunCluster(cluster) // must never panic
		if cverr != nil && rerr == nil {
			t.Fatalf("cluster Validate rejected (%v) but RunCluster accepted", cverr)
		}
		if cverr == nil && rerr != nil {
			t.Fatalf("cluster Validate accepted but RunCluster failed: %v", rerr)
		}
		if rerr != nil {
			return
		}
		if res.Load == nil {
			t.Fatal("load spec accepted but ClusterResult.Load is nil")
		}
		checkLoadInvariants(t, res.Load)
		if res.Load.TimeScale <= 0 {
			t.Fatalf("resolved TimeScale %g not positive", res.Load.TimeScale)
		}
	})
}
