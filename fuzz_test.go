package es2

import (
	"math"
	"testing"
	"time"
)

// FuzzScenarioSpec is the validation-surface contract test: for every
// spec the fuzzer can construct, Run either returns a result or an
// error — it never panics — and Validate's verdict agrees with Run's.
// Simulated time is pinned tiny so valid specs execute in microseconds
// of wall time.
func FuzzScenarioSpec(f *testing.F) {
	f.Add(1, 1, 1, 1, 1, int64(0), 1024, 4, 0.0, 0.0, 0.0, int64(0), int64(0), false, false)
	f.Add(4, 4, 4, 2, 2, int64(1), 64, 128, 0.5, 0.5, 450_000.0, int64(time.Millisecond), int64(time.Microsecond), true, false)
	f.Add(-1, 0, 99, -3, 17, int64(6), -5, 1<<30, 1.5, math.Inf(1), math.NaN(), int64(-time.Second), int64(time.Hour), false, true)
	f.Add(33, 1000, 2, 5, 0, int64(9), 0, 0, -0.1, 2.0, 1e12, int64(time.Minute), int64(0), true, true)

	f.Fuzz(func(t *testing.T, vms, vcpus, vmCores, vhostCores, queues int,
		kind int64, msg, window int, lossProb, kickProb, rate float64,
		stallEvery, stall int64, hybrid, sidecore bool) {

		cfg := Config{}
		if hybrid {
			cfg = PIH(4)
		}
		spec := ScenarioSpec{
			Name: "fuzz", Seed: 1, Config: cfg,
			Workload: es2Workload(kind, msg, window, rate),
			VMs:      vms, VCPUs: vcpus, VMCores: vmCores,
			VhostCores: vhostCores, Queues: queues,
			Sidecore: sidecore,
			Faults: FaultSpec{
				PacketLossProb:  lossProb,
				LostKickProb:    kickProb,
				VhostStallEvery: time.Duration(stallEvery),
				VhostStall:      time.Duration(stall),
			},
			Warmup:   time.Millisecond,
			Duration: 2 * time.Millisecond,
		}

		verr := spec.Validate()
		res, rerr := Run(spec) // must never panic
		if verr != nil && rerr == nil {
			t.Fatalf("Validate rejected (%v) but Run accepted", verr)
		}
		if verr == nil && rerr != nil {
			t.Fatalf("Validate accepted but Run failed: %v", rerr)
		}
		if rerr == nil && res == nil {
			t.Fatal("Run returned neither result nor error")
		}
	})
}

func es2Workload(kind int64, msg, window int, rate float64) WorkloadSpec {
	return WorkloadSpec{
		Kind:     WorkloadKind(kind),
		MsgBytes: msg, Window: window,
		UDPRatePPS: rate,
	}
}
