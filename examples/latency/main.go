// Latency example: the paper's responsiveness experiments. First the
// Fig. 7 ping trace (RTT from the external server to a VM whose four
// vCPUs time-share cores with three other VMs), then a Fig. 9 style
// Httperf point showing connection times under load.
//
//	go run ./examples/latency
package main

import (
	"fmt"
	"log"
	"time"

	"es2"
)

func run(spec es2.ScenarioSpec) *es2.Result {
	res, err := es2.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	smp := func(name string, cfg es2.Config, w es2.WorkloadSpec, d time.Duration) es2.ScenarioSpec {
		return es2.ScenarioSpec{
			Name: name, Seed: 3, Config: cfg, Workload: w,
			VMs: 4, VCPUs: 4, VMCores: 4, VhostCores: 4,
			Warmup: 400 * time.Millisecond, Duration: d,
		}
	}

	fmt.Println("== Ping RTT (Fig. 7): 4 VMs x 4 vCPUs on 4 cores")
	fmt.Printf("%-10s %12s %12s %12s\n", "Config", "Mean", "P99", "Max")
	for _, cfg := range []es2.Config{es2.Baseline(), es2.PIOnly(), es2.Full(4)} {
		w := es2.WorkloadSpec{Kind: es2.Ping, PingInterval: 100 * time.Millisecond}
		res := run(smp("ping/"+cfg.Name(), cfg, w, 4*time.Second))
		fmt.Printf("%-10s %12v %12v %12v\n", cfg.Name(),
			res.MeanLatency.Round(time.Microsecond),
			res.P99Latency.Round(time.Microsecond),
			res.MaxLatency.Round(time.Microsecond))
	}
	fmt.Println("\nWithout redirection an interrupt may wait for its affinity vCPU's")
	fmt.Println("next CFS timeslice — tens of milliseconds; ES2 delivers to a vCPU")
	fmt.Println("that is running right now.")

	fmt.Println("\n== Httperf connection time (Fig. 9 point, 2200 conns/s)")
	fmt.Printf("%-10s %16s %12s\n", "Config", "MeanConnTime", "Estab/s")
	for _, cfg := range []es2.Config{es2.Baseline(), es2.Full(4)} {
		w := es2.WorkloadSpec{Kind: es2.Httperf, ConnRate: 2200}
		res := run(smp("httperf/"+cfg.Name(), cfg, w, 1200*time.Millisecond))
		fmt.Printf("%-10s %16v %12.0f\n", cfg.Name(),
			res.MeanLatency.Round(10*time.Microsecond), res.OpsPerSec)
	}
	fmt.Println("\nAt this rate the baseline's listen backlog overflows (slow accept")
	fmt.Println("drains) and SYN retransmissions blow the average up; ES2 keeps the")
	fmt.Println("event path responsive and the backlog shallow.")
}
