// Quickstart: simulate one netperf TCP sender in a single-vCPU VM and
// compare the paper's four event-path configurations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"es2"
)

func main() {
	configs := []es2.Config{
		es2.Baseline(), // KVM with posted interrupts disabled
		es2.PIOnly(),   // + hardware posted interrupts
		es2.PIH(4),     // + hybrid I/O handling (quota 4 for TCP)
		es2.Full(4),    // + intelligent interrupt redirection = full ES2
	}

	fmt.Println("netperf TCP_STREAM send, 1024B messages, 1-vCPU VM")
	fmt.Printf("%-10s %12s %12s %8s %14s\n", "Config", "Exits/s", "IOExits/s", "TIG", "Throughput")

	for _, cfg := range configs {
		res, err := es2.Run(es2.ScenarioSpec{
			Name:   "quickstart/" + cfg.Name(),
			Seed:   1,
			Config: cfg,
			Workload: es2.WorkloadSpec{
				Kind:     es2.NetperfTCPSend,
				MsgBytes: 1024,
			},
			Duration: time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.0f %12.0f %7.1f%% %11.1f Mb\n",
			cfg.Name(), res.TotalExitRate, res.IOExitRate, 100*res.TIG, res.ThroughputMbps)
	}

	fmt.Println("\nPosted interrupts remove the interrupt-delivery and EOI exits;")
	fmt.Println("the hybrid scheme removes the I/O-request exits; time-in-guest")
	fmt.Println("climbs toward 100% as the event path sheds hypervisor interventions.")
}
