// Quota tuning example: the paper's Section VI-B methodology. The
// hybrid I/O handling scheme bounds each polling turn by a quota; this
// walk-through sweeps it for a UDP stream and shows the mode-switch
// trade-off the paper describes — too high and polling keeps falling
// back to notifications, too low and handler switching overhead eats
// the gain.
//
//	go run ./examples/quota
package main

import (
	"fmt"
	"log"
	"time"

	"es2"
)

func main() {
	fmt.Println("UDP_STREAM send, 256B messages, sweeping poll_quota")
	fmt.Printf("%-14s %12s %8s %14s\n", "Quota", "IOExits/s", "TIG", "Throughput")

	run := func(name string, cfg es2.Config) {
		res, err := es2.Run(es2.ScenarioSpec{
			Name: name, Seed: 11, Config: cfg,
			Workload: es2.WorkloadSpec{Kind: es2.NetperfUDPSend, MsgBytes: 256},
			Duration: time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.0f %7.1f%% %11.1f Mb\n",
			name, res.IOExitRate, 100*res.TIG, res.ThroughputMbps)
	}

	run("notification", es2.PIOnly())
	for _, q := range []int{64, 32, 16, 8, 4, 2} {
		run(fmt.Sprintf("quota %d", q), es2.PIH(q))
	}

	fmt.Println("\nThe exit rate collapses once the quota is small enough that the")
	fmt.Println("handler never observes an empty queue (sustained polling); pushing")
	fmt.Println("further only adds handler-switch overhead and costs throughput.")
	fmt.Println("The paper picks 8 for UDP and 4 for TCP by exactly this experiment.")
}
