// SR-IOV example: the paper's Section VII applied. Under direct device
// assignment the guest's doorbell writes bypass the hypervisor, so the
// I/O-request exits are gone by construction — but interrupt delivery
// still traps without VT-d posted interrupts, and responsiveness under
// core multiplexing still needs intelligent interrupt redirection.
//
// The run also demonstrates the perf-kvm-style tracer: set
// TraceCapacity and the result carries an event summary.
//
//	go run ./examples/sriov
package main

import (
	"fmt"
	"log"
	"time"

	"es2"
)

func main() {
	fmt.Println("== SR-IOV direct assignment, netperf TCP send (1-vCPU VM)")
	fmt.Printf("%-22s %12s %12s %8s\n", "Config", "IOExits/s", "IntrExits/s", "TIG")
	for _, c := range []struct {
		name string
		cfg  es2.Config
	}{
		{"no VT-d PI", es2.Baseline()},
		{"VT-d PI", es2.PIOnly()},
	} {
		res, err := es2.Run(es2.ScenarioSpec{
			Name: "sriov/" + c.name, Seed: 21, Config: c.cfg,
			Workload:     es2.WorkloadSpec{Kind: es2.NetperfTCPSend, MsgBytes: 1024},
			DirectAssign: true,
			Duration:     time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		intr := res.ExitRates["ExternalInterrupt"] + res.ExitRates["APICAccess"]
		fmt.Printf("%-22s %12.0f %12.0f %7.1f%%\n", c.name, res.IOExitRate, intr, 100*res.TIG)
	}

	fmt.Println("\n== VT-d PI + redirection under core multiplexing (ping RTT)")
	for _, c := range []struct {
		name string
		cfg  es2.Config
	}{
		{"VT-d PI only", es2.PIOnly()},
		{"VT-d PI + redirection", es2.Config{PI: true, Redirect: true}},
	} {
		res, err := es2.Run(es2.ScenarioSpec{
			Name: "sriov-ping/" + c.name, Seed: 21, Config: c.cfg,
			Workload:     es2.WorkloadSpec{Kind: es2.Ping, PingInterval: 50 * time.Millisecond},
			DirectAssign: true,
			VMs:          4, VCPUs: 4, VMCores: 4, VhostCores: 4,
			Duration: 3 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s mean RTT %v (p99 %v)\n", c.name,
			res.MeanLatency.Round(time.Microsecond), res.P99Latency.Round(time.Microsecond))
	}

	fmt.Println("\n== Event trace excerpt (perf-kvm style)")
	res, err := es2.Run(es2.ScenarioSpec{
		Name: "sriov/trace", Seed: 21, Config: es2.PIOnly(),
		Workload:      es2.WorkloadSpec{Kind: es2.NetperfTCPSend, MsgBytes: 1024},
		DirectAssign:  true,
		TraceCapacity: 1 << 12,
		Duration:      200 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.TraceSummary)
	for i, e := range res.TraceEvents {
		if i >= 5 {
			break
		}
		fmt.Printf("  %9.6fs vm%d/vcpu%d %-12s %s\n", e.AtSeconds, e.VM, e.VCPU, e.Kind, e.Detail)
	}
}
