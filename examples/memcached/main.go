// Memcached example: the paper's Fig. 8a scenario. A Memcached-style
// server runs in a 4-vCPU VM that time-shares four cores with three
// other VMs; a memaslap-style generator keeps 256 requests outstanding
// over 16 connections at a 9:1 get/set ratio.
//
//	go run ./examples/memcached
package main

import (
	"fmt"
	"log"
	"time"

	"es2"
)

func main() {
	fmt.Println("Memcached under memaslap, 4 VMs x 4 vCPUs on 4 shared cores")
	fmt.Printf("%-10s %10s %12s %12s %12s\n", "Config", "Ops/s", "MeanLat", "P99Lat", "vs Baseline")

	var base float64
	for _, cfg := range []es2.Config{es2.Baseline(), es2.PIOnly(), es2.PIH(4), es2.Full(4)} {
		res, err := es2.Run(es2.ScenarioSpec{
			Name:   "memcached/" + cfg.Name(),
			Seed:   7,
			Config: cfg,
			Workload: es2.WorkloadSpec{
				Kind:        es2.Memcached,
				Concurrency: 256,
				Conns:       16,
			},
			VMs: 4, VCPUs: 4, VMCores: 4, VhostCores: 4,
			Warmup:   400 * time.Millisecond,
			Duration: 1200 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.OpsPerSec
		}
		fmt.Printf("%-10s %10.0f %12v %12v %11.2fx\n",
			cfg.Name(), res.OpsPerSec,
			res.MeanLatency.Round(time.Microsecond),
			res.P99Latency.Round(time.Microsecond),
			res.OpsPerSec/base)
	}

	fmt.Println("\nThe closed-loop load makes throughput track request latency")
	fmt.Println("(Little's law); redirection slashes the latency by steering each")
	fmt.Println("request's interrupt to a vCPU that is already running.")
}
