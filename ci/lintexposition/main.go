// Command lintexposition reads an OpenMetrics exposition from stdin
// and fails (exit 1) unless it parses under the repo's strict lint:
// # TYPE before # HELP before samples, counter _total suffixes, label
// escaping that round-trips, and a final # EOF terminator. CI pipes
// live /metrics scrapes of the es2cluster ops plane through it.
package main

import (
	"fmt"
	"io"
	"os"

	"es2/internal/telemetry"
)

func main() {
	body, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintexposition: read:", err)
		os.Exit(1)
	}
	fams, err := telemetry.ParseExposition(string(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintexposition:", err)
		os.Exit(1)
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	fmt.Printf("ok: %d families, %d samples\n", len(fams), samples)
}
