#!/usr/bin/env bash
# Regenerate the checked-in engine performance baseline.
#
# CI's perf-smoke job benchmarks table1 + rack1 at -scale 4 and
# compares the result against ci/engine-baseline.json at a generous
# threshold (different hardware). When the scenario set changes — a new
# experiment, a renamed scenario, an intentional engine cost change —
# re-record the baseline with this script, on an otherwise idle
# machine, and commit the result. The exact es2bench invocation here
# mirrors the CI job, so a freshly recorded baseline always matches the
# scenarios CI measures.
#
# Usage: ci/update-baselines.sh [reps]   (default 5, CI's rep count)
set -euo pipefail
cd "$(dirname "$0")/.."

reps="${1:-5}"
out="ci/engine-baseline.json"

echo "recording engine baseline: table1 + rack1, scale 4, ${reps} reps" >&2
go run ./cmd/es2bench -perf -reps "$reps" -exp table1,rack1 -scale 4 \
  -progress -json "$out"

echo "wrote $out — review the deltas, then commit:" >&2
echo "  go run ./cmd/es2bench -compare $out $out   # sanity: zero deltas" >&2
